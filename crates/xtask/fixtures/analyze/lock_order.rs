//! Analyze fixture: `lock-order`. The pool discipline is "at most one
//! SM lock held at a time, always through `lock_sm`". Sequential
//! acquisition with an explicit `drop` is fine, and closure
//! temporaries die when their call's parens close — the engine's
//! map/sum sampling shape must stay clean. Overlapping guards and raw
//! `.lock()` bypasses are flagged at the offending acquisition.

struct Sm {
    score: u64,
}

fn lock_sm(cell: &Mutex<Sm>) -> MutexGuard<'_, Sm> {
    cell.lock().expect("SM mutex poisoned")
}

fn serial_ok(cells: &[Mutex<Sm>]) -> u64 {
    let sm = lock_sm(&cells[0]);
    let a = sm.score;
    drop(sm);
    let sm = lock_sm(&cells[1]);
    a + sm.score
}

fn tally_ok(cells: &[Mutex<Sm>]) -> u64 {
    cells.iter().map(|c| lock_sm(c).score).sum::<u64>()
}

fn double_lock(cells: &[Mutex<Sm>]) -> u64 {
    let first = lock_sm(&cells[0]);
    let second = lock_sm(&cells[1]); //~ lock-order
    first.score + second.score
}

fn nested_args(cells: &[Mutex<Sm>]) -> u64 {
    merge(lock_sm(&cells[0]).score, lock_sm(&cells[1]).score) //~ lock-order
}

fn raw_bypass(cells: &[Mutex<Sm>]) -> u64 {
    let sm = cells[0].lock().expect("SM mutex poisoned"); //~ lock-order
    sm.score
}

fn merge(a: u64, b: u64) -> u64 {
    a + b
}

//! Analyze fixture: `lock-order`. SM shards are owned by exactly one
//! thread and hand off through atomic epoch counters, so everything
//! reachable from a stepping hot-path root (`commit`, `worker_loop`,
//! ...) must be lock-free: any `Mutex`/`RwLock` type or `.lock()`
//! acquisition is flagged at the offending line. Helpers that no root
//! reaches — exporters, test scaffolding — may lock freely.

struct Shard {
    score: u64,
}

fn worker_loop(shards: &[Shard]) {
    for s in shards {
        service(s);
    }
}

fn service(s: &Shard) {
    let _g = s.cell.lock(); //~ lock-order
}

fn commit(s: &mut Shard) -> u64 {
    let stats = Mutex::new(s.score); //~ lock-order
    stats.into_inner()
}

fn exporter_ok(registry: &Registry) -> u64 {
    let snapshot = registry.inner.lock();
    snapshot.score
}

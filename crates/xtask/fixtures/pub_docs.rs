//! Fixture: `pub-docs` — public API must carry doc comments.

pub fn undocumented() -> u32 { //~ pub-docs
    7
}

/// Documented, so no finding here.
pub fn documented() -> u32 {
    9
}

pub struct Bare; //~ pub-docs

/// Documented through an attribute.
#[derive(Clone)]
pub struct Dressed;

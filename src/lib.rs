//! # equalizer-suite — workspace umbrella
//!
//! Re-exports the crates of the Equalizer (MICRO 2014) reproduction so
//! the examples and integration tests have a single import root. See the
//! individual crates for documentation:
//!
//! * [`equalizer_sim`] — the cycle-level GPU simulator substrate
//! * [`equalizer_power`] — the GPUWattch-style energy model
//! * [`equalizer_core`] — the Equalizer runtime (the paper's contribution)
//! * [`equalizer_workloads`] — the Table II kernel catalog
//! * [`equalizer_baselines`] — DynCTA, CCWS and static VF points
//! * [`equalizer_harness`] — experiment runner and figure generators

pub use equalizer_baselines as baselines;
pub use equalizer_core as core;
pub use equalizer_harness as harness;
pub use equalizer_power as power;
pub use equalizer_sim as sim;
pub use equalizer_workloads as workloads;

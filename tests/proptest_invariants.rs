//! Property-based tests over the simulator, decision algorithm and power
//! model: random programs terminate with conserved instruction counts,
//! random counters never produce out-of-range decisions, and energy is
//! positive and component-additive.

use std::sync::Arc;

use equalizer_core::{decide, table_i_votes, Action, Mode};
use equalizer_power::PowerModel;
use equalizer_sim::counters::WarpStateCounters;
use equalizer_sim::governor::{FixedBlocksGovernor, StaticGovernor};
use equalizer_sim::gpu::simulate;
use equalizer_sim::kernel::{Invocation, KernelCategory, KernelSpec};
use equalizer_sim::prelude::*;
use proptest::prelude::*;

/// A small random instruction body.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        3 => Just(Instr::alu()),
        2 => Just(Instr::alu_dep()),
        2 => Just(Instr::load_streaming()),
        1 => (1u32..64).prop_map(|lines| Instr::Mem(MemInstr {
            is_load: true,
            pattern: AddressPattern::WorkingSet { lines },
            accesses: 2,
            space: MemSpace::Global,
        })),
        1 => Just(Instr::Mem(MemInstr {
            is_load: false,
            pattern: AddressPattern::Streaming,
            accesses: 1,
            space: MemSpace::Global,
        })),
        1 => Just(Instr::Sync),
    ]
}

fn arb_kernel() -> impl Strategy<Value = KernelSpec> {
    (
        proptest::collection::vec(arb_instr(), 1..8),
        1u32..20,     // iterations
        1usize..5,    // warps per block
        1usize..5,    // max blocks
        1u64..20,     // grid blocks
    )
        .prop_map(|(body, iters, w_cta, max_blocks, grid)| {
            KernelSpec::new(
                "prop",
                KernelCategory::Unsaturated,
                w_cta,
                max_blocks,
                vec![Invocation {
                    grid_blocks: grid,
                    program: Arc::new(Program::new(vec![Segment::new(body, iters)])),
                }],
            )
        })
}

/// Dynamic instructions that consume issue slots (barriers do not).
fn issued_instrs(kernel: &KernelSpec) -> u64 {
    kernel
        .invocations()
        .iter()
        .map(|inv| {
            let per_warp: u64 = inv
                .program
                .segments()
                .iter()
                .map(|seg| {
                    let non_sync = seg
                        .body
                        .iter()
                        .filter(|i| !matches!(i, Instr::Sync))
                        .count() as u64;
                    non_sync * u64::from(seg.iterations)
                })
                .sum();
            per_warp * inv.grid_blocks * kernel.warps_per_block() as u64
        })
        .sum()
}

fn small_config() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.num_sms = 2;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random kernel terminates and issues exactly its dynamic
    /// instruction count.
    #[test]
    fn random_kernels_terminate_and_conserve_instructions(kernel in arb_kernel()) {
        let stats = simulate(&small_config(), &kernel, &mut StaticGovernor)
            .expect("kernel must terminate");
        prop_assert_eq!(stats.instructions(), issued_instrs(&kernel));
        prop_assert!(stats.wall_time_fs > 0);
    }

    /// Throttling concurrency never deadlocks and never changes the work.
    #[test]
    fn fixed_block_throttling_conserves_work(kernel in arb_kernel(), blocks in 1usize..4) {
        let stats = simulate(&small_config(), &kernel, &mut FixedBlocksGovernor::new(blocks))
            .expect("throttled kernel must terminate");
        prop_assert_eq!(stats.instructions(), issued_instrs(&kernel));
    }

    /// Energy is positive and equals the sum of its components for any run.
    #[test]
    fn energy_is_positive_and_additive(kernel in arb_kernel()) {
        let stats = simulate(&small_config(), &kernel, &mut StaticGovernor).expect("run");
        let e = PowerModel::gtx480().energy(&stats);
        prop_assert!(e.total_j() > 0.0);
        let sum = e.leakage_j + e.sm_dynamic_j + e.sm_clock_j
            + e.mem_dynamic_j + e.mem_clock_j + e.dram_standby_j;
        prop_assert!((e.total_j() - sum).abs() < 1e-12);
        prop_assert!(e.leakage_j > 0.0, "leakage accrues with wall time");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Algorithm 1 output is always within bounds: block delta in
    /// {-1, 0, +1} and actions only from the defined pair.
    #[test]
    fn decision_is_always_bounded(
        active in 0u64..49,
        waiting in 0u64..49,
        xalu in 0u64..49,
        xmem in 0u64..49,
        w_cta in 1usize..25,
    ) {
        let samples = 32;
        let c = WarpStateCounters {
            samples,
            active: active * samples,
            waiting: waiting * samples,
            excess_alu: xalu * samples,
            excess_mem: xmem * samples,
            ..WarpStateCounters::default()
        };
        let p = decide(&c, w_cta);
        prop_assert!((-1..=1).contains(&p.block_delta));
        // Block reductions happen only under heavy memory contention.
        if p.block_delta < 0 {
            prop_assert!(xmem as f64 > w_cta as f64);
            prop_assert_eq!(p.action, Some(Action::Mem));
        }
        // Block increases only when most warps wait.
        if p.block_delta > 0 {
            prop_assert!(waiting as f64 > active as f64 / 2.0);
        }
    }

    /// Table I never boosts in energy mode and never throttles in
    /// performance mode.
    #[test]
    fn table_i_is_mode_consistent(comp in proptest::bool::ANY) {
        let action = if comp { Action::Comp } else { Action::Mem };
        let e = table_i_votes(Mode::Energy, Some(action));
        for v in [e.sm, e.mem] {
            prop_assert_ne!(v, equalizer_core::Vote::Up, "energy mode never boosts");
        }
        let p = table_i_votes(Mode::Performance, Some(action));
        for v in [p.sm, p.mem] {
            prop_assert_ne!(v, equalizer_core::Vote::Down, "performance mode never throttles");
        }
    }
}

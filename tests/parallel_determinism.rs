//! Parallel stepping is a pure wall-clock knob: for any
//! `SimOptions::threads` value the two-phase cycle must produce
//! bit-identical `RunStats` — epoch timelines included — to a serial
//! run. These tests pin that property across the tier-1 workloads, the
//! per-SM-VRM machine and runs with mid-run VF transitions.

use std::sync::Arc;

use equalizer_core::{Equalizer, Mode};
use equalizer_sim::governor::{
    EpochContext, EpochDecision, Governor, SmEpochReport, StaticGovernor, VfRequest,
};
use equalizer_sim::gpu::{simulate_with, SimOptions};
use equalizer_sim::kernel::{Invocation, KernelCategory, KernelSpec};
use equalizer_sim::prelude::*;
use equalizer_sim::stats::RunStats;
use equalizer_workloads::kernel_by_name;

fn opts(threads: usize) -> SimOptions {
    SimOptions {
        threads,
        ..SimOptions::default()
    }
}

/// Runs `kernel` serially and at several thread counts with fresh
/// governors from `make_gov`, asserting every run's complete statistics
/// are bit-identical to the serial run.
fn assert_thread_invariant<G, F>(name: &str, config: &GpuConfig, kernel: &KernelSpec, make_gov: F)
where
    G: Governor,
    F: Fn() -> G,
{
    let serial: RunStats = simulate_with(config, kernel, &mut make_gov(), opts(1))
        .unwrap_or_else(|e| panic!("{name}: serial run failed: {e}"));
    assert!(serial.instructions() > 0, "{name}: kernel must do work");
    for threads in [2, usize::MAX] {
        let parallel = simulate_with(config, kernel, &mut make_gov(), opts(threads))
            .unwrap_or_else(|e| panic!("{name}: threads={threads} run failed: {e}"));
        assert_eq!(
            serial, parallel,
            "{name}: threads={threads} diverged from serial"
        );
    }
}

#[test]
fn tier1_workloads_are_thread_invariant() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    for name in ["mri-q", "mmer", "cfd-2"] {
        let kernel = kernel_by_name(name).unwrap();
        assert_thread_invariant(name, &config, &kernel, || StaticGovernor);
    }
}

#[test]
fn equalizer_runs_are_thread_invariant() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    let kernel = kernel_by_name("mmer").unwrap();
    assert_thread_invariant("equalizer/mmer", &config, &kernel, || {
        Equalizer::new(Mode::Performance, config.num_sms)
    });
}

#[test]
fn mshr_pressure_is_thread_invariant() {
    // A cache-thrashing kernel keeps the interconnect back-pressured, so
    // the commit phase's arbitration order is exercised every cycle —
    // exactly where a parallel-stepping bug would first show up.
    let mut config = GpuConfig::gtx480();
    config.num_sms = 4;
    let kernel = equalizer_workloads::cache_kernel(
        "parallel-thrash",
        8,
        6,
        1.0,
        equalizer_workloads::CacheParams {
            lines_per_warp: 96,
            divergence: 4,
            alu_per_load: 2,
            alu_dep_every: 0,
            iterations: 30,
            waves: 2.0,
        },
    );
    assert_thread_invariant("thrash", &config, &kernel, || StaticGovernor);
}

#[test]
fn per_sm_vrm_runs_are_thread_invariant() {
    // Per-SM VRMs drift the SM clocks apart, so different subsets of SMs
    // are due each tick; the due list (and thus the commit order) must
    // still be thread-count independent.
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    config.per_sm_vrm = true;
    let kernel = kernel_by_name("sc").unwrap();
    assert_thread_invariant("per-sm-vrm/sc", &config, &kernel, || {
        Equalizer::new(Mode::Energy, 6).with_per_sm_vrm(true)
    });
}

/// Boosts the SM domain at the first epoch and throttles it two epochs
/// later, so the run crosses VF transitions (period changes) mid-flight.
#[derive(Default)]
struct BoostThenThrottle {
    epochs: u64,
}

impl Governor for BoostThenThrottle {
    fn name(&self) -> &str {
        "boost-then-throttle"
    }
    fn epoch(&mut self, _ctx: &EpochContext, reports: &[SmEpochReport]) -> EpochDecision {
        self.epochs += 1;
        let mut d = EpochDecision::maintain(reports.len());
        match self.epochs {
            1 => {
                d.sm_vf = VfRequest::Increase;
                d.target_blocks = reports.iter().map(|_| Some(2)).collect();
            }
            3 => {
                d.sm_vf = VfRequest::Decrease;
                d.mem_vf = VfRequest::Increase;
            }
            _ => {}
        }
        d
    }
}

#[test]
fn mid_run_vf_transitions_are_thread_invariant() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 4;
    let kernel = KernelSpec::new(
        "vf-mix",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: 48,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![
                    Instr::alu(),
                    Instr::load_streaming(),
                    Instr::alu_dep(),
                    Instr::Sync,
                ],
                900,
            )])),
        }],
    );
    assert_thread_invariant("vf-mix", &config, &kernel, BoostThenThrottle::default);
}

//! Parallel stepping is a pure wall-clock knob: for any
//! `SimOptions::threads` value the partitioned two-phase cycle must
//! produce bit-identical `RunStats` — epoch timelines included — to a
//! serial run, and so must tick batching for any `max_batch_ticks`
//! value. These tests pin both properties across the tier-1 workloads,
//! uneven SM partitions, the per-SM-VRM machine and runs with mid-run
//! VF transitions.

use std::collections::BTreeSet;
use std::sync::Arc;

use equalizer_sim::engine::{Engine, StepEvent};

use equalizer_core::{Equalizer, Mode};
use equalizer_sim::governor::{
    EpochContext, EpochDecision, Governor, SmEpochReport, StaticGovernor, VfRequest,
};
use equalizer_sim::gpu::{simulate_with, SimOptions};
use equalizer_sim::kernel::{Invocation, KernelCategory, KernelSpec};
use equalizer_sim::prelude::*;
use equalizer_sim::stats::RunStats;
use equalizer_workloads::kernel_by_name;

fn opts(threads: usize) -> SimOptions {
    SimOptions {
        threads,
        ..SimOptions::default()
    }
}

/// Runs `kernel` serially and at several thread counts with fresh
/// governors from `make_gov`, asserting every run's complete statistics
/// are bit-identical to the serial run.
fn assert_thread_invariant<G, F>(name: &str, config: &GpuConfig, kernel: &KernelSpec, make_gov: F)
where
    G: Governor,
    F: Fn() -> G,
{
    let serial: RunStats = simulate_with(config, kernel, &mut make_gov(), opts(1))
        .unwrap_or_else(|e| panic!("{name}: serial run failed: {e}"));
    assert!(serial.instructions() > 0, "{name}: kernel must do work");
    // Sweep thread counts that exercise uneven partitions (SM count not
    // divisible by the partition count) as well as the clamped maximum.
    // Thread counts are clamped to the SM count by the engine, so dedupe
    // by the effective value to avoid re-running identical machines.
    let mut effective_seen = BTreeSet::new();
    for threads in [2, 3, 4, 8, 15] {
        if !effective_seen.insert(threads.min(config.num_sms)) {
            continue;
        }
        let parallel = simulate_with(config, kernel, &mut make_gov(), opts(threads))
            .unwrap_or_else(|e| panic!("{name}: threads={threads} run failed: {e}"));
        assert_eq!(
            serial, parallel,
            "{name}: threads={threads} diverged from serial"
        );
    }
}

#[test]
fn tier1_workloads_are_thread_invariant() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    for name in ["mri-q", "mmer", "cfd-2"] {
        let kernel = kernel_by_name(name).unwrap();
        assert_thread_invariant(name, &config, &kernel, || StaticGovernor);
    }
}

#[test]
fn equalizer_runs_are_thread_invariant() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    let kernel = kernel_by_name("mmer").unwrap();
    assert_thread_invariant("equalizer/mmer", &config, &kernel, || {
        Equalizer::new(Mode::Performance, config.num_sms)
    });
}

#[test]
fn mshr_pressure_is_thread_invariant() {
    // A cache-thrashing kernel keeps the interconnect back-pressured, so
    // the commit phase's arbitration order is exercised every cycle —
    // exactly where a parallel-stepping bug would first show up.
    let mut config = GpuConfig::gtx480();
    config.num_sms = 4;
    let kernel = equalizer_workloads::cache_kernel(
        "parallel-thrash",
        8,
        6,
        1.0,
        equalizer_workloads::CacheParams {
            lines_per_warp: 96,
            divergence: 4,
            alu_per_load: 2,
            alu_dep_every: 0,
            iterations: 30,
            waves: 2.0,
        },
    );
    assert_thread_invariant("thrash", &config, &kernel, || StaticGovernor);
}

#[test]
fn per_sm_vrm_runs_are_thread_invariant() {
    // Per-SM VRMs drift the SM clocks apart, so different subsets of SMs
    // are due each tick; the due list (and thus the commit order) must
    // still be thread-count independent.
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    config.per_sm_vrm = true;
    let kernel = kernel_by_name("sc").unwrap();
    assert_thread_invariant("per-sm-vrm/sc", &config, &kernel, || {
        Equalizer::new(Mode::Energy, 6).with_per_sm_vrm(true)
    });
}

/// Boosts the SM domain at the first epoch and throttles it two epochs
/// later, so the run crosses VF transitions (period changes) mid-flight.
#[derive(Default)]
struct BoostThenThrottle {
    epochs: u64,
}

impl Governor for BoostThenThrottle {
    fn name(&self) -> &str {
        "boost-then-throttle"
    }
    fn epoch(&mut self, _ctx: &EpochContext, reports: &[SmEpochReport]) -> EpochDecision {
        self.epochs += 1;
        let mut d = EpochDecision::maintain(reports.len());
        match self.epochs {
            1 => {
                d.sm_vf = VfRequest::Increase;
                d.target_blocks = reports.iter().map(|_| Some(2)).collect();
            }
            3 => {
                d.sm_vf = VfRequest::Decrease;
                d.mem_vf = VfRequest::Increase;
            }
            _ => {}
        }
        d
    }
}

#[test]
fn mid_run_vf_transitions_are_thread_invariant() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 4;
    let kernel = vf_mix_kernel();
    assert_thread_invariant("vf-mix", &config, &kernel, BoostThenThrottle::default);
}

/// A mixed ALU/load/sync kernel whose runs cross VF transitions under
/// [`BoostThenThrottle`].
fn vf_mix_kernel() -> KernelSpec {
    KernelSpec::new(
        "vf-mix",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: 48,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![
                    Instr::alu(),
                    Instr::load_streaming(),
                    Instr::alu_dep(),
                    Instr::Sync,
                ],
                900,
            )])),
        }],
    )
}

#[test]
fn full_machine_partitions_unevenly_and_stays_invariant() {
    // The full 15-SM machine: thread counts 2, 4 and 8 all leave uneven
    // partitions (15 = 7+8 = 4+4+4+3 = ...), and 15 gives every
    // partition exactly one SM.
    let config = GpuConfig::gtx480();
    assert_eq!(config.num_sms, 15, "sweep assumes the full gtx480 array");
    let kernel = KernelSpec::new(
        "uneven",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: 60,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![Instr::alu(), Instr::load_streaming(), Instr::alu_dep()],
                150,
            )])),
        }],
    );
    assert_thread_invariant("uneven", &config, &kernel, || StaticGovernor);
}

/// Runs `kernel` through a hand-stepped [`Engine`], returning the final
/// stats and the number of SM ticks executed inside batched windows.
fn engine_run(config: &GpuConfig, kernel: &KernelSpec, options: SimOptions) -> (RunStats, u64) {
    let mut engine = Engine::new(config, kernel, options).unwrap();
    while engine.step(&mut StaticGovernor).unwrap() != StepEvent::Complete {}
    let stats = engine.stats();
    let batched = engine.batched_ticks();
    (stats, batched)
}

#[test]
fn tick_batching_is_bit_identical_to_per_tick() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 4;

    // A long pure-ALU kernel: once the initial loads drain, every warp
    // is provably memory-free for thousands of cycles, so windows must
    // actually open (the batched-tick counter is asserted below).
    let alu = KernelSpec::new(
        "batch-alu",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: 24,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![Instr::alu(), Instr::alu_dep()],
                3000,
            )])),
        }],
    );
    let per_tick = SimOptions {
        max_batch_ticks: 1,
        ..SimOptions::default()
    };
    let (base, base_batched) = engine_run(&config, &alu, per_tick);
    assert_eq!(base_batched, 0, "max_batch_ticks=1 must disable batching");
    let (batched, batched_ticks) = engine_run(&config, &alu, SimOptions::default());
    assert!(
        batched_ticks > 0,
        "a pure-ALU kernel must open batched windows"
    );
    assert_eq!(base, batched, "batched windows diverged from per-tick");

    // Batching composes with the worker pool: same bits again.
    let batched_parallel = SimOptions {
        threads: 4,
        ..SimOptions::default()
    };
    let (parallel, _) = engine_run(&config, &alu, batched_parallel);
    assert_eq!(base, parallel, "parallel batched run diverged");

    // A load/sync kernel with mid-run VF transitions: windows are rare
    // and must refuse to open across in-flight memory or pending
    // transitions — results stay bit-identical either way.
    let mix = vf_mix_kernel();
    let mk = |max_batch_ticks| SimOptions {
        max_batch_ticks,
        ..SimOptions::default()
    };
    let serial = simulate_with(&config, &mix, &mut BoostThenThrottle::default(), mk(1)).unwrap();
    let windowed =
        simulate_with(&config, &mix, &mut BoostThenThrottle::default(), mk(1024)).unwrap();
    assert_eq!(serial, windowed, "vf-mix diverged under batching");
}

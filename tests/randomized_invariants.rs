//! Randomized-input tests over the simulator, decision algorithm and power
//! model: random programs terminate with conserved instruction counts,
//! random counters never produce out-of-range decisions, and energy is
//! positive and component-additive.
//!
//! Inputs are drawn from the repo's own deterministic PRNG
//! ([`equalizer_sim::util::SplitMix64`]) instead of an external
//! property-testing framework, so the suite runs in a fully offline build
//! and every failure is reproducible from the fixed seed.

use std::sync::Arc;

use equalizer_core::{decide, table_i_votes, Action, Mode};
use equalizer_power::PowerModel;
use equalizer_sim::counters::WarpStateCounters;
use equalizer_sim::governor::{FixedBlocksGovernor, StaticGovernor};
use equalizer_sim::gpu::simulate;
use equalizer_sim::kernel::{Invocation, KernelCategory, KernelSpec};
use equalizer_sim::prelude::*;
use equalizer_sim::util::SplitMix64;

/// Fixed seed: change only deliberately, and note it in the commit.
const SEED: u64 = 0xE9A1_12E8_0001;

/// Number of random kernels per simulation property.
const KERNEL_CASES: usize = 24;

/// Draws one weighted-random instruction, mirroring the old proptest
/// strategy (3x alu, 2x alu_dep, 2x streaming load, 1x working-set load,
/// 1x streaming store, 1x barrier).
fn draw_instr(rng: &mut SplitMix64) -> Instr {
    match rng.next_below(10) {
        0..=2 => Instr::alu(),
        3..=4 => Instr::alu_dep(),
        5..=6 => Instr::load_streaming(),
        7 => Instr::Mem(MemInstr {
            is_load: true,
            pattern: AddressPattern::WorkingSet {
                lines: 1 + rng.next_below(63) as u32,
            },
            accesses: 2,
            space: MemSpace::Global,
        }),
        8 => Instr::Mem(MemInstr {
            is_load: false,
            pattern: AddressPattern::Streaming,
            accesses: 1,
            space: MemSpace::Global,
        }),
        _ => Instr::Sync,
    }
}

/// Draws a small random kernel with 1–7 body instructions.
fn draw_kernel(rng: &mut SplitMix64) -> KernelSpec {
    let body_len = 1 + rng.next_below(7) as usize;
    let body: Vec<Instr> = (0..body_len).map(|_| draw_instr(rng)).collect();
    let iters = 1 + rng.next_below(19) as u32;
    let w_cta = 1 + rng.next_below(4) as usize;
    let max_blocks = 1 + rng.next_below(4) as usize;
    let grid = 1 + rng.next_below(19);
    KernelSpec::new(
        "rand",
        KernelCategory::Unsaturated,
        w_cta,
        max_blocks,
        vec![Invocation {
            grid_blocks: grid,
            program: Arc::new(Program::new(vec![Segment::new(body, iters)])),
        }],
    )
}

/// Dynamic instructions that consume issue slots (barriers do not).
fn issued_instrs(kernel: &KernelSpec) -> u64 {
    kernel
        .invocations()
        .iter()
        .map(|inv| {
            let per_warp: u64 = inv
                .program
                .segments()
                .iter()
                .map(|seg| {
                    let non_sync = seg
                        .body
                        .iter()
                        .filter(|i| !matches!(i, Instr::Sync))
                        .count() as u64;
                    non_sync * u64::from(seg.iterations)
                })
                .sum();
            per_warp * inv.grid_blocks * kernel.warps_per_block() as u64
        })
        .sum()
}

fn small_config() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.num_sms = 2;
    c
}

/// Every random kernel terminates and issues exactly its dynamic
/// instruction count.
#[test]
fn random_kernels_terminate_and_conserve_instructions() {
    let mut rng = SplitMix64::new(SEED);
    for case in 0..KERNEL_CASES {
        let kernel = draw_kernel(&mut rng);
        let stats = simulate(&small_config(), &kernel, &mut StaticGovernor)
            .unwrap_or_else(|e| panic!("case {case}: kernel must terminate: {e}"));
        assert_eq!(
            stats.instructions(),
            issued_instrs(&kernel),
            "case {case}: instruction conservation"
        );
        assert!(stats.wall_time_fs > 0, "case {case}: time advances");
    }
}

/// Parallel stepping is invisible: every random kernel produces
/// bit-identical `RunStats` at `threads = 2` and serial, across varying
/// SM counts and both VRM topologies.
#[test]
fn random_kernels_are_thread_invariant() {
    use equalizer_sim::gpu::simulate_with;

    let mut rng = SplitMix64::new(SEED ^ 4);
    for case in 0..KERNEL_CASES {
        let kernel = draw_kernel(&mut rng);
        let mut config = small_config();
        config.num_sms = 2 + rng.next_below(3) as usize;
        config.per_sm_vrm = rng.next_below(2) == 1;
        let serial = simulate_with(
            &config,
            &kernel,
            &mut StaticGovernor,
            SimOptions {
                threads: 1,
                ..SimOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("case {case}: serial run failed: {e}"));
        let parallel = simulate_with(
            &config,
            &kernel,
            &mut StaticGovernor,
            SimOptions {
                threads: 2,
                ..SimOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("case {case}: parallel run failed: {e}"));
        assert_eq!(
            serial, parallel,
            "case {case}: threads=2 diverged (num_sms={}, per_sm_vrm={})",
            config.num_sms, config.per_sm_vrm
        );
    }
}

/// Throttling concurrency never deadlocks and never changes the work.
#[test]
fn fixed_block_throttling_conserves_work() {
    let mut rng = SplitMix64::new(SEED ^ 1);
    for case in 0..KERNEL_CASES {
        let kernel = draw_kernel(&mut rng);
        let blocks = 1 + rng.next_below(3) as usize;
        let stats = simulate(
            &small_config(),
            &kernel,
            &mut FixedBlocksGovernor::new(blocks),
        )
        .unwrap_or_else(|e| panic!("case {case}: throttled kernel must terminate: {e}"));
        assert_eq!(
            stats.instructions(),
            issued_instrs(&kernel),
            "case {case}: throttling conserves work"
        );
    }
}

/// Energy is positive and equals the sum of its components for any run.
#[test]
fn energy_is_positive_and_additive() {
    let mut rng = SplitMix64::new(SEED ^ 2);
    for case in 0..KERNEL_CASES {
        let kernel = draw_kernel(&mut rng);
        let stats = simulate(&small_config(), &kernel, &mut StaticGovernor)
            .unwrap_or_else(|e| panic!("case {case}: run failed: {e}"));
        let e = PowerModel::gtx480().energy(&stats);
        assert!(e.total_j() > 0.0, "case {case}: positive energy");
        let sum = e.leakage_j
            + e.sm_dynamic_j
            + e.sm_clock_j
            + e.mem_dynamic_j
            + e.mem_clock_j
            + e.dram_standby_j;
        assert!(
            (e.total_j() - sum).abs() < 1e-12,
            "case {case}: components sum to total"
        );
        assert!(
            e.leakage_j > 0.0,
            "case {case}: leakage accrues with wall time"
        );
    }
}

/// Algorithm 1 output is always within bounds: block delta in {-1, 0, +1}
/// and actions only from the defined pair.
#[test]
fn decision_is_always_bounded() {
    let mut rng = SplitMix64::new(SEED ^ 3);
    for case in 0..512 {
        let active = rng.next_below(49);
        let waiting = rng.next_below(49);
        let xalu = rng.next_below(49);
        let xmem = rng.next_below(49);
        let w_cta = 1 + rng.next_below(24) as usize;
        let samples = 32;
        let c = WarpStateCounters {
            samples,
            active: active * samples,
            waiting: waiting * samples,
            excess_alu: xalu * samples,
            excess_mem: xmem * samples,
            ..WarpStateCounters::default()
        };
        let p = decide(&c, w_cta);
        assert!(
            (-1..=1).contains(&p.block_delta),
            "case {case}: block delta bounded"
        );
        // Block reductions happen only under heavy memory contention.
        if p.block_delta < 0 {
            assert!(
                xmem as f64 > w_cta as f64,
                "case {case}: reduce only on X_mem"
            );
            assert_eq!(p.action, Some(Action::Mem), "case {case}");
        }
        // Block increases only when most warps wait.
        if p.block_delta > 0 {
            assert!(
                waiting as f64 > active as f64 / 2.0,
                "case {case}: grow only when waiting dominates"
            );
        }
    }
}

/// Table I never boosts in energy mode and never throttles in
/// performance mode.
#[test]
fn table_i_is_mode_consistent() {
    for action in [Action::Comp, Action::Mem] {
        let e = table_i_votes(Mode::Energy, Some(action));
        for v in [e.sm, e.mem] {
            assert_ne!(v, equalizer_core::Vote::Up, "energy mode never boosts");
        }
        let p = table_i_votes(Mode::Performance, Some(action));
        for v in [p.sm, p.mem] {
            assert_ne!(
                v,
                equalizer_core::Vote::Down,
                "performance mode never throttles"
            );
        }
    }
}

//! Tests for the per-SM voltage-regulator extension (§V-A1 discussion):
//! each SM gets its own clock domain and the Equalizer variant steers
//! each regulator from that SM's own vote instead of a global majority.

use std::sync::Arc;

use equalizer_core::{Equalizer, Mode};
use equalizer_power::PowerModel;
use equalizer_sim::governor::StaticGovernor;
use equalizer_sim::gpu::simulate;
use equalizer_sim::kernel::{Invocation, KernelCategory, KernelSpec};
use equalizer_sim::prelude::*;
use equalizer_workloads::kernel_by_name;

fn per_sm_config() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.per_sm_vrm = true;
    c
}

fn alu_kernel(blocks: u64, iters: u32) -> KernelSpec {
    KernelSpec::new(
        "vrm-alu",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: blocks,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![Instr::alu(), Instr::alu_dep()],
                iters,
            )])),
        }],
    )
}

#[test]
fn per_sm_clocks_match_shared_behaviour_under_static_governor() {
    // Without any VF requests, per-SM clocks are indistinguishable from
    // the shared clock.
    let mut shared = GpuConfig::gtx480();
    shared.num_sms = 4;
    let mut per_sm = shared.clone();
    per_sm.per_sm_vrm = true;
    let k = alu_kernel(16, 400);
    let a = simulate(&shared, &k, &mut StaticGovernor).unwrap();
    let b = simulate(&per_sm, &k, &mut StaticGovernor).unwrap();
    assert_eq!(a.instructions(), b.instructions());
    assert_eq!(a.wall_time_fs, b.wall_time_fs);
    assert_eq!(a.sm_cycles_at, b.sm_cycles_at);
}

#[test]
fn per_sm_equalizer_still_tunes_compute_kernels() {
    let config = per_sm_config();
    let k = kernel_by_name("mri-q").unwrap();
    let base = simulate(&GpuConfig::gtx480(), &k, &mut StaticGovernor).unwrap();
    let mut gov = Equalizer::new(Mode::Performance, config.num_sms).with_per_sm_vrm(true);
    let tuned = simulate(&config, &k, &mut gov).unwrap();
    let speedup = base.time_seconds() / tuned.time_seconds();
    assert!(
        speedup > 1.10,
        "per-SM VRM performance mode must still boost compute (got {speedup:.3})"
    );
    assert!(
        tuned.sm_level_residency()[2] > 0.5,
        "SMs should spend most time boosted"
    );
}

#[test]
fn per_sm_vrm_saves_energy_on_imbalanced_kernels() {
    // prtcl-2: one straggler block. With a shared VRM, boosting the
    // straggler's SM boosts all fifteen; with per-SM VRMs only the busy
    // SM pays for its boost — same story the paper tells for per-SM
    // regulators. Energy cost must therefore not be worse, for at least
    // comparable performance.
    let k = kernel_by_name("prtcl-2").unwrap();
    let model = PowerModel::gtx480();

    let shared_cfg = GpuConfig::gtx480();
    let mut shared_gov = Equalizer::new(Mode::Performance, shared_cfg.num_sms);
    let shared = simulate(&shared_cfg, &k, &mut shared_gov).unwrap();

    let per_cfg = per_sm_config();
    let mut per_gov = Equalizer::new(Mode::Performance, per_cfg.num_sms).with_per_sm_vrm(true);
    let per = simulate(&per_cfg, &k, &mut per_gov).unwrap();

    let shared_e = model.energy(&shared).total_j();
    let per_e = model.energy(&per).total_j();
    let perf_ratio = shared.time_seconds() / per.time_seconds();
    assert!(
        perf_ratio > 0.95,
        "per-SM VRM must not give up meaningful performance (ratio {perf_ratio:.3})"
    );
    assert!(
        per_e < shared_e * 1.02,
        "per-SM VRM must not cost more energy on an imbalanced kernel \
         (shared {shared_e:.4} J, per-SM {per_e:.4} J)"
    );
}

#[test]
fn per_sm_runs_are_deterministic() {
    let config = per_sm_config();
    let k = kernel_by_name("sc").unwrap();
    let mut g1 = Equalizer::new(Mode::Energy, config.num_sms).with_per_sm_vrm(true);
    let mut g2 = Equalizer::new(Mode::Energy, config.num_sms).with_per_sm_vrm(true);
    let a = simulate(&config, &k, &mut g1).unwrap();
    let b = simulate(&config, &k, &mut g2).unwrap();
    assert_eq!(a.wall_time_fs, b.wall_time_fs);
    assert_eq!(a.instructions(), b.instructions());
}

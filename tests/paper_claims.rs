//! Integration tests encoding the paper's core claims on the full
//! 15-SM configuration with the real Table II kernels.
//!
//! These assert *directions and rough magnitudes* (who wins, roughly by
//! how much), the reproduction standard set out in DESIGN.md.

use equalizer_baselines::StaticPoint;
use equalizer_core::Mode;
use equalizer_harness::{compare, Runner, System};
use equalizer_workloads::kernel_by_name;

fn runner() -> Runner {
    Runner::gtx480()
}

#[test]
fn compute_kernel_scales_with_sm_frequency_only() {
    let r = runner();
    let k = kernel_by_name("mri-q").unwrap();
    let base = r.baseline(&k).unwrap();
    let sm_hi = r.run(&k, System::Static(StaticPoint::SmHigh)).unwrap();
    let mem_hi = r.run(&k, System::Static(StaticPoint::MemHigh)).unwrap();
    let c_sm = compare(&base, &sm_hi);
    let c_mem = compare(&base, &mem_hi);
    assert!(
        c_sm.speedup > 1.10,
        "SM boost must speed up a compute kernel (got {:.3})",
        c_sm.speedup
    );
    assert!(
        c_mem.speedup < 1.03,
        "memory boost must not help a compute kernel (got {:.3})",
        c_mem.speedup
    );
}

#[test]
fn memory_kernel_scales_with_memory_frequency_only() {
    let r = runner();
    let k = kernel_by_name("cfd-1").unwrap();
    let base = r.baseline(&k).unwrap();
    let sm_hi = r.run(&k, System::Static(StaticPoint::SmHigh)).unwrap();
    let mem_hi = r.run(&k, System::Static(StaticPoint::MemHigh)).unwrap();
    assert!(
        compare(&base, &mem_hi).speedup > 1.10,
        "memory boost must speed up a bandwidth-bound kernel"
    );
    let sm_effect = compare(&base, &sm_hi).speedup;
    assert!(
        (0.97..1.03).contains(&sm_effect),
        "SM frequency must be irrelevant to a bandwidth-bound kernel (got {sm_effect:.3})"
    );
}

#[test]
fn lowering_the_idle_domain_saves_energy_without_performance() {
    let r = runner();
    // Compute kernel: memory-low saves energy at no cost.
    let k = kernel_by_name("cutcp").unwrap();
    let base = r.baseline(&k).unwrap();
    let mem_lo = r.run(&k, System::Static(StaticPoint::MemLow)).unwrap();
    let c = compare(&base, &mem_lo);
    assert!(
        c.speedup > 0.97,
        "mem-low must not hurt compute ({:.3})",
        c.speedup
    );
    assert!(c.energy_ratio < 0.99, "mem-low must save energy");

    // Memory kernel: SM-low saves energy at no cost.
    let k = kernel_by_name("histo-3").unwrap();
    let base = r.baseline(&k).unwrap();
    let sm_lo = r.run(&k, System::Static(StaticPoint::SmLow)).unwrap();
    let c = compare(&base, &sm_lo);
    assert!(
        c.speedup > 0.97,
        "SM-low must not hurt memory kernel ({:.3})",
        c.speedup
    );
    assert!(
        c.energy_ratio < 0.95,
        "SM-low must save >5% on a memory kernel"
    );
}

#[test]
fn cache_kernel_prefers_fewer_blocks() {
    let r = runner();
    let k = kernel_by_name("kmn").unwrap();
    let base = r.baseline(&k).unwrap();
    let one = r.run(&k, System::FixedBlocks(1)).unwrap();
    let c = compare(&base, &one);
    assert!(
        c.speedup > 1.8,
        "kmeans at one block must be much faster (got {:.3})",
        c.speedup
    );
    assert!(
        one.stats.l1_hit_rate() > 0.9,
        "one resident block must fit the L1 (hit rate {:.3})",
        one.stats.l1_hit_rate()
    );
    assert!(
        base.stats.l1_hit_rate() < 0.6,
        "full concurrency must thrash the L1 (hit rate {:.3})",
        base.stats.l1_hit_rate()
    );
}

#[test]
fn equalizer_performance_mode_beats_baseline_on_every_category() {
    let r = runner();
    for name in ["mri-q", "cfd-1", "kmn", "sad"] {
        let k = kernel_by_name(name).unwrap();
        let base = r.baseline(&k).unwrap();
        let eq = r.run(&k, System::Equalizer(Mode::Performance)).unwrap();
        let c = compare(&base, &eq);
        assert!(
            c.speedup > 1.08,
            "{name}: performance mode must deliver a clear speedup (got {:.3})",
            c.speedup
        );
    }
}

#[test]
fn equalizer_energy_mode_saves_energy_without_losing_performance() {
    let r = runner();
    for name in ["mri-q", "cfd-1", "lbm"] {
        let k = kernel_by_name(name).unwrap();
        let base = r.baseline(&k).unwrap();
        let eq = r.run(&k, System::Equalizer(Mode::Energy)).unwrap();
        let c = compare(&base, &eq);
        assert!(
            c.speedup > 0.95,
            "{name}: energy mode must not cost >5% performance (got {:.3})",
            c.speedup
        );
        assert!(
            c.energy_ratio < 0.95,
            "{name}: energy mode must save >5% energy (got {:.3})",
            c.energy_ratio
        );
    }
}

#[test]
fn equalizer_matches_the_best_static_point_for_compute() {
    let r = runner();
    let k = kernel_by_name("pf").unwrap();
    let base = r.baseline(&k).unwrap();
    let eq = r.run(&k, System::Equalizer(Mode::Performance)).unwrap();
    let sm_hi = r.run(&k, System::Static(StaticPoint::SmHigh)).unwrap();
    let eq_speedup = compare(&base, &eq).speedup;
    let static_speedup = compare(&base, &sm_hi).speedup;
    assert!(
        eq_speedup > static_speedup - 0.02,
        "Equalizer ({eq_speedup:.3}) must track the best static point ({static_speedup:.3})"
    );
}

#[test]
fn leuko1_texture_path_blinds_equalizer() {
    // §V-B: leuko-1's texture traffic hides memory back-pressure from the
    // LD/ST pipeline, so Equalizer cannot capture its memory intensity.
    let r = runner();
    let k = kernel_by_name("leuko-1").unwrap();
    let base = r.baseline(&k).unwrap();
    let eq = r.run(&k, System::Equalizer(Mode::Performance)).unwrap();
    let mem_hi = r.run(&k, System::Static(StaticPoint::MemHigh)).unwrap();
    let eq_speedup = compare(&base, &eq).speedup;
    let oracle = compare(&base, &mem_hi).speedup;
    assert!(
        eq_speedup < oracle - 0.05,
        "Equalizer ({eq_speedup:.3}) must fall clearly short of the memory boost \
         ({oracle:.3}) on the texture-path kernel"
    );
}

#[test]
fn load_imbalanced_kernel_gets_sm_boost() {
    // prtcl-2: one straggler block; Algorithm 1's idle arm races it.
    let r = runner();
    let k = kernel_by_name("prtcl-2").unwrap();
    let base = r.baseline(&k).unwrap();
    let eq = r.run(&k, System::Equalizer(Mode::Performance)).unwrap();
    let c = compare(&base, &eq);
    assert!(
        c.speedup > 1.10,
        "idle SMs must trigger the race-to-finish boost"
    );
    // Leakage savings keep the energy cost low despite the boost.
    assert!(
        c.energy_ratio < 1.10,
        "energy increase must stay modest (got {:+.1}%)",
        (c.energy_ratio - 1.0) * 100.0
    );
}

#[test]
fn stencil_pays_for_energy_mode() {
    // §V-B: stncl is the one kernel that loses performance in energy mode
    // because neither domain is slack.
    let r = runner();
    let k = kernel_by_name("stncl").unwrap();
    let base = r.baseline(&k).unwrap();
    let eq = r.run(&k, System::Equalizer(Mode::Energy)).unwrap();
    let c = compare(&base, &eq);
    assert!(
        c.speedup < 0.98,
        "stncl must lose performance in energy mode (got {:.3})",
        c.speedup
    );
    assert!(c.energy_ratio < 1.0, "but it must still save energy");
}

//! Hot-path telemetry is observation only: enabling the pool's
//! profiling counters, changing the spin-vs-park crossover, or reading
//! the batch-window diagnostics must never change a single bit of
//! `RunStats`, at any thread count. These tests pin that contract and
//! check the counters themselves say something coherent about the run.

use std::sync::Arc;

use equalizer_sim::engine::{Engine, StepEvent};
use equalizer_sim::governor::StaticGovernor;
use equalizer_sim::gpu::{simulate_with, SimOptions};
use equalizer_sim::kernel::{Invocation, KernelCategory, KernelSpec};
use equalizer_sim::prelude::*;
use equalizer_sim::stats::RunStats;
use equalizer_sim::telemetry::{BatchWindowStats, PoolStats};
use equalizer_workloads::kernel_by_name;

/// Hand-steps a full run and returns its stats plus both telemetry
/// views.
fn profiled_run(
    config: &GpuConfig,
    kernel: &KernelSpec,
    options: SimOptions,
) -> (RunStats, PoolStats, BatchWindowStats) {
    let mut engine = Engine::new(config, kernel, options).unwrap();
    while engine.step(&mut StaticGovernor).unwrap() != StepEvent::Complete {}
    let pool = engine.pool_stats();
    let windows = engine.batch_window_stats().clone();
    (engine.stats(), pool, windows)
}

#[test]
fn profiling_and_spin_limit_never_change_results() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    let kernel = kernel_by_name("mmer").unwrap();
    let baseline = simulate_with(&config, &kernel, &mut StaticGovernor, SimOptions::default())
        .expect("baseline run");
    assert!(baseline.instructions() > 0, "kernel must do work");

    // Telemetry on/off at serial and maximum effective parallelism,
    // crossed with spin limits from park-immediately to well past the
    // default. (Kept modest: oversubscribed single-core hosts pay for
    // every spin iteration, and the contract is limit-invariance, not
    // spin endurance.)
    for threads in [1, config.num_sms] {
        for profile in [false, true] {
            for spin_limit in [0, 256, 2048] {
                let options = SimOptions {
                    threads,
                    profile,
                    spin_limit,
                    ..SimOptions::default()
                };
                let run = simulate_with(&config, &kernel, &mut StaticGovernor, options)
                    .expect("telemetry variant run");
                assert_eq!(
                    baseline, run,
                    "threads={threads} profile={profile} spin_limit={spin_limit} \
                     diverged from the baseline"
                );
            }
        }
    }
}

#[test]
fn profiled_run_reports_partition_activity_and_imbalance() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 6;
    let kernel = kernel_by_name("mri-q").unwrap();
    let options = SimOptions {
        threads: 4,
        profile: true,
        ..SimOptions::default()
    };
    let (stats, pool, _) = profiled_run(&config, &kernel, options);
    assert!(stats.instructions() > 0);

    assert_eq!(pool.workers, 3, "threads-1 workers back the pool");
    assert_eq!(pool.partitions.len(), 4, "one shard per thread");
    assert!(pool.dispatches > 0, "a profiled run counts its dispatches");
    assert!(pool.busy_total() > 0, "SM ticks were charged somewhere");
    for (i, p) in pool.partitions.iter().enumerate() {
        assert!(p.jobs > 0, "partition {i} never ran a job");
        assert!(p.busy_ticks > 0, "partition {i} never ticked an SM");
    }
    let (max, min) = pool.busy_imbalance();
    assert!(max >= min, "imbalance summary spans the partitions");
    assert!(min > 0, "every partition did work on this kernel");
    // Spin/park tallies are wall-clock facts — nothing to pin beyond
    // the accounting identity: each wait either spun out or parked.
    let waited: u64 = pool.partitions.iter().map(|p| p.spins + p.parks).sum();
    let _ = waited; // non-negative by type; presence is the contract
}

#[test]
fn unprofiled_run_reports_zero_pool_counters_but_window_diagnostics() {
    let mut config = GpuConfig::gtx480();
    config.num_sms = 4;
    // A long pure-ALU kernel so batched windows actually open.
    let kernel = KernelSpec::new(
        "telemetry-alu",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: 24,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![Instr::alu(), Instr::alu_dep()],
                3000,
            )])),
        }],
    );
    let (stats, pool, windows) = profiled_run(&config, &kernel, SimOptions::default());

    // Off is genuinely off: every profiling counter stays zero.
    assert_eq!(pool.dispatches, 0);
    assert_eq!(pool.busy_total(), 0);
    assert!(pool.partitions.iter().all(|p| p.jobs == 0 && p.spins == 0));

    // The batch-window diagnostic is unconditional (it lives on the
    // engine thread and is deterministic), and internally coherent.
    assert!(windows.windows > 0, "ALU kernel must open windows");
    assert_eq!(windows.ticks, stats.batched_ticks, "diagnostic ticks agree");
    assert_eq!(
        windows.size_histogram.iter().sum::<u64>(),
        windows.windows,
        "every window lands in exactly one size bucket"
    );
    assert_eq!(
        windows.bounded_by_knob
            + windows.bounded_by_epoch
            + windows.bounded_by_limit
            + windows.bounded_by_horizon,
        windows.windows,
        "every window records exactly one binding bound"
    );
    assert!(
        windows.closes_total() > 0,
        "memory phases must close some windows"
    );
}

#[test]
fn batch_window_stats_are_thread_and_profile_invariant() {
    // The window diagnostic runs on the engine thread only, so its
    // counts — like RunStats — must not depend on wall-clock knobs.
    let mut config = GpuConfig::gtx480();
    config.num_sms = 4;
    let kernel = kernel_by_name("cfd-2").unwrap();
    let (_, _, base) = profiled_run(&config, &kernel, SimOptions::default());
    for (threads, profile) in [(4, false), (1, true), (4, true)] {
        let options = SimOptions {
            threads,
            profile,
            ..SimOptions::default()
        };
        let (_, _, windows) = profiled_run(&config, &kernel, options);
        assert_eq!(
            base, windows,
            "threads={threads} profile={profile} changed the window diagnostic"
        );
    }
}

//! The step-wise `Engine` must be a faithful decomposition of the old
//! run-to-completion loop: driving a run through `Engine::step()` (or the
//! coarser `run_epoch`/`run_invocation` loops) produces bit-identical
//! statistics to a one-shot `simulate_with`, with or without observers
//! attached.

use std::sync::Arc;

use equalizer_core::{Equalizer, Mode};
use equalizer_sim::engine::{Engine, Observer, Recorder, StepEvent};
use equalizer_sim::governor::Governor;
use equalizer_sim::gpu::{simulate_with, SimOptions};
use equalizer_sim::prelude::*;
use equalizer_sim::stats::RunStats;
use equalizer_workloads::kernel_by_name;

fn small_config() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.num_sms = 4;
    c
}

fn assert_bit_identical(name: &str, a: &RunStats, b: &RunStats) {
    assert_eq!(a.wall_time_fs, b.wall_time_fs, "{name}: wall time");
    assert_eq!(a.sm_cycles_at, b.sm_cycles_at, "{name}: SM cycle residency");
    assert_eq!(a.sm_time_at, b.sm_time_at, "{name}: SM time residency");
    assert_eq!(
        a.mem_cycles_at, b.mem_cycles_at,
        "{name}: mem cycle residency"
    );
    assert_eq!(a.instructions(), b.instructions(), "{name}: instructions");
    assert_eq!(a.dram_accesses(), b.dram_accesses(), "{name}: dram");
    assert_eq!(a.warp_states, b.warp_states, "{name}: warp states");
    assert_eq!(a.epochs.len(), b.epochs.len(), "{name}: epoch count");
    for (x, y) in a.epochs.iter().zip(b.epochs.iter()) {
        assert_eq!(x, y, "{name}: epoch record");
    }
    assert_eq!(a.invocations, b.invocations, "{name}: invocation stats");
}

/// One iteration of the scenario under three drive styles: one-shot
/// `simulate_with`, single-`step()` loop, and `run_epoch` loop.
fn check_drive_styles(
    name: &str,
    config: &GpuConfig,
    kernel: &KernelSpec,
    mut mk: impl FnMut() -> Box<dyn Governor>,
) {
    let opts = SimOptions::default();
    let oneshot = simulate_with(config, kernel, mk().as_mut(), opts).expect("one-shot run");

    let mut gov = mk();
    let mut engine = Engine::new(config, kernel, opts).expect("engine builds");
    let mut steps = 0u64;
    while engine.step(gov.as_mut()).expect("step") != StepEvent::Complete {
        steps += 1;
    }
    assert!(steps > 1_000, "{name}: a real run takes many steps");
    assert_bit_identical(name, &oneshot, &engine.stats());

    let mut gov = mk();
    let mut engine = Engine::new(config, kernel, opts).expect("engine builds");
    while engine.run_epoch(gov.as_mut()).expect("run_epoch") != StepEvent::Complete {}
    assert_bit_identical(&format!("{name}/run_epoch"), &oneshot, &engine.stats());
}

#[test]
fn stepping_matches_oneshot_under_static_governor() {
    let config = small_config();
    let kernel = kernel_by_name("mmer").expect("catalog kernel");
    check_drive_styles("static/mmer", &config, &kernel, || Box::new(StaticGovernor));
}

#[test]
fn stepping_matches_oneshot_under_equalizer() {
    let config = small_config();
    let kernel = kernel_by_name("mmer").expect("catalog kernel");
    check_drive_styles("equalizer/mmer", &config, &kernel, || {
        Box::new(Equalizer::new(Mode::Performance, small_config().num_sms))
    });
}

#[test]
fn stepping_matches_oneshot_with_per_sm_vrm() {
    let mut config = small_config();
    config.per_sm_vrm = true;
    let kernel = kernel_by_name("mmer").expect("catalog kernel");
    check_drive_styles("per-sm-vrm/mmer", &config, &kernel, || {
        Box::new(Equalizer::new(Mode::Performance, small_config().num_sms).with_per_sm_vrm(true))
    });
}

#[test]
fn attached_observer_reproduces_runstats_epochs() {
    let config = small_config();
    let kernel = kernel_by_name("mmer").expect("catalog kernel");
    let mut external = Recorder::default();
    let mut gov = Equalizer::new(Mode::Energy, config.num_sms);
    let mut engine = Engine::new(&config, &kernel, SimOptions::default())
        .expect("engine builds")
        .with_observer(&mut external);
    let stats = engine.run(&mut gov).expect("run");
    assert!(stats.epochs.len() >= 2, "kernel must span several epochs");
    assert_eq!(
        external.records(),
        &stats.epochs[..],
        "an external Recorder observer sees the exact internal timeline"
    );
}

#[test]
fn record_epochs_off_still_feeds_observers() {
    let config = small_config();
    let kernel = kernel_by_name("mmer").expect("catalog kernel");
    let opts = SimOptions {
        record_epochs: false,
        ..SimOptions::default()
    };
    let mut external = Recorder::default();
    let mut engine = Engine::new(&config, &kernel, opts)
        .expect("engine builds")
        .with_observer(&mut external);
    let stats = engine.run(&mut StaticGovernor).expect("run");
    assert!(stats.epochs.is_empty(), "internal timeline disabled");
    assert!(
        !external.records().is_empty(),
        "attached observers still receive every epoch"
    );
    // And the timeline they see matches a recorded run bit for bit.
    let recorded = simulate_with(&config, &kernel, &mut StaticGovernor, SimOptions::default())
        .expect("recorded run");
    assert_eq!(external.records(), &recorded.epochs[..]);
}

/// Mid-run inspection: pause at an epoch boundary, look inside the
/// machine, and finish — without perturbing the result.
#[test]
fn mid_run_inspection_is_nonintrusive() {
    let config = small_config();
    let kernel = kernel_by_name("mmer").expect("catalog kernel");
    let opts = SimOptions::default();
    let oneshot = simulate_with(&config, &kernel, &mut StaticGovernor, opts).expect("one-shot");

    let mut engine = Engine::new(&config, &kernel, opts).expect("engine builds");
    let event = engine.run_epoch(&mut StaticGovernor).expect("first epoch");
    assert_eq!(event, StepEvent::EpochBoundary);
    assert_eq!(engine.epoch_index(), 1);
    assert!(engine.now_fs() > 0);
    assert!(!engine.is_complete());
    // Peek at the SMs mid-run.
    let resident: usize = (0..engine.num_sms())
        .map(|i| engine.with_sm(i, |s| s.resident_warps()))
        .sum();
    assert!(resident > 0, "warps are resident mid-run");
    let mid = engine.stats();
    assert!(mid.wall_time_fs < oneshot.wall_time_fs);
    // Finish and compare.
    let full = engine.run(&mut StaticGovernor).expect("finish");
    assert_bit_identical("inspected/mmer", &oneshot, &full);
}

/// A custom observer sees block completions adding up to the whole grid.
#[test]
fn block_events_account_for_the_grid() {
    #[derive(Default)]
    struct BlockCounter {
        completed: u64,
    }
    impl Observer for BlockCounter {
        fn on_block_event(&mut self, event: equalizer_sim::engine::BlockEvent) {
            if let equalizer_sim::engine::BlockEvent::Completed { count, .. } = event {
                self.completed += count;
            }
        }
    }

    let config = small_config();
    let program = Arc::new(Program::new(vec![Segment::new(
        vec![Instr::alu(), Instr::alu_dep()],
        500,
    )]));
    let kernel = KernelSpec::new(
        "grid-account",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: 96,
            program,
        }],
    );
    let mut counter = BlockCounter::default();
    let mut engine = Engine::new(&config, &kernel, SimOptions::default())
        .expect("engine builds")
        .with_observer(&mut counter);
    engine.run(&mut StaticGovernor).expect("run");
    assert_eq!(
        counter.completed, 96,
        "every block's completion is observed exactly once"
    );
}

//! Exercises the `validate` sanitizer feature end to end.
//!
//! With `--features validate`, the simulator checks clock-domain
//! invariants at every boundary: monotonic cycle accounting in both
//! domains, MSHRs/LSU drained at kernel completion, the scoreboard never
//! releasing a register it did not set, and every energy component
//! finite, non-negative and leakage-consistent. These tests drive a
//! cross-category kernel sample through every governor so the sanitizers
//! run on real traffic; without the feature they are compiled to
//! nothing, so the same tests double as a plain smoke suite.

use equalizer_baselines::StaticPoint;
use equalizer_core::Mode;
use equalizer_harness::{Runner, System};
use equalizer_workloads::kernel_by_name;

/// One kernel per contention category, plus the invocation-flipping
/// special case — between them they light up the MSHR, LSU, DVFS and
/// epoch-boundary paths where the sanitizers live.
const SAMPLE: &[&str] = &["mri-q", "cfd-2", "mmer", "lavaMD", "spmv"];

#[test]
fn sanitizers_hold_across_categories_and_governors() {
    let r = Runner::gtx480();
    // The catalog sample plus the invocation-flipping special case,
    // which exercises the drain/refill path between invocations.
    let kernels: Vec<_> = SAMPLE
        .iter()
        .map(|name| kernel_by_name(name).unwrap())
        .chain(std::iter::once(equalizer_workloads::bfs2()))
        .collect();
    for k in &kernels {
        let name = k.name();
        for system in [
            System::Static(StaticPoint::Baseline),
            System::Equalizer(Mode::Performance),
            System::Equalizer(Mode::Energy),
        ] {
            let m = r.run(k, system).unwrap();
            assert!(m.stats.wall_time_fs > 0, "{name} under {system:?}");
            assert!(
                m.energy_j().is_finite() && m.energy_j() > 0.0,
                "{name} under {system:?}: energy {}",
                m.energy_j()
            );
        }
    }
}

#[cfg(feature = "validate")]
mod armed {
    use equalizer_power::PowerModel;
    use equalizer_sim::config::FS_PER_SEC;
    use equalizer_sim::stats::RunStats;

    /// The feature must actually reach the simulator crate through the
    /// workspace feature forwarding, not just exist on the umbrella.
    #[test]
    fn validate_feature_is_forwarded_to_the_simulator() {
        assert!(equalizer_sim::VALIDATE_ENABLED);
    }

    /// The energy sanitizer must reject statistics whose per-level
    /// residency exceeds the recorded wall time.
    #[test]
    #[should_panic(expected = "leakage energy inconsistent")]
    fn power_sanitizer_catches_impossible_residency() {
        let mut s = RunStats {
            wall_time_fs: 1,
            ..RunStats::default()
        };
        // A full second of nominal-level residency inside a 1 fs run.
        s.sm_time_at[1] = FS_PER_SEC as u64;
        let _ = PowerModel::gtx480().energy(&s);
    }
}

//! The simulator is a deterministic instrument: identical inputs must
//! produce bit-identical statistics, regardless of governor.

use equalizer_core::Mode;
use equalizer_harness::{Runner, System};
use equalizer_workloads::kernel_by_name;

fn assert_identical(name: &str, system: System) {
    let r = Runner::gtx480();
    let k = kernel_by_name(name).unwrap();
    let a = r.run(&k, system).unwrap();
    let b = r.run(&k, system).unwrap();
    assert_eq!(
        a.stats.wall_time_fs, b.stats.wall_time_fs,
        "{name} wall time"
    );
    assert_eq!(
        a.stats.instructions(),
        b.stats.instructions(),
        "{name} instrs"
    );
    assert_eq!(
        a.stats.dram_accesses(),
        b.stats.dram_accesses(),
        "{name} dram"
    );
    assert_eq!(
        a.stats.sm_cycles_at, b.stats.sm_cycles_at,
        "{name} cycle residency"
    );
    assert!((a.energy_j() - b.energy_j()).abs() < 1e-12, "{name} energy");
}

#[test]
fn baseline_runs_are_deterministic() {
    assert_identical(
        "mmer",
        System::Static(equalizer_baselines::StaticPoint::Baseline),
    );
}

#[test]
fn equalizer_runs_are_deterministic() {
    assert_identical("mmer", System::Equalizer(Mode::Performance));
}

#[test]
fn dyncta_and_ccws_runs_are_deterministic() {
    assert_identical("mmer", System::DynCta);
    assert_identical("mmer", System::Ccws);
}

/// The regression behind the MSHR map: merge lists keyed by cache line
/// used to live in a `HashMap`, whose per-process iteration order could
/// reorder replay and wiggle cycle counts under heavy miss traffic. A
/// cache-thrashing kernel maximises MSHR pressure, so replaying it twice
/// must still be bit-identical — cycle residency *and* the warp-state
/// histogram.
#[test]
fn cache_thrashing_replay_is_bit_identical() {
    let r = Runner::gtx480();
    // Working sets far beyond the 256-line L1, with divergent loads:
    // every warp streams misses through the MSHRs for the whole run.
    let k = equalizer_workloads::cache_kernel(
        "thrash-repro",
        8,
        6,
        1.0,
        equalizer_workloads::CacheParams {
            lines_per_warp: 96,
            divergence: 4,
            alu_per_load: 2,
            alu_dep_every: 0,
            iterations: 40,
            waves: 2.0,
        },
    );
    for system in [
        System::Static(equalizer_baselines::StaticPoint::Baseline),
        System::Equalizer(Mode::Energy),
        System::Equalizer(Mode::Performance),
    ] {
        let a = r.run(&k, system).unwrap();
        let b = r.run(&k, system).unwrap();
        assert!(
            a.stats.dram_accesses() > 0,
            "the workload must actually thrash"
        );
        assert_eq!(
            a.stats.sm_cycles_at, b.stats.sm_cycles_at,
            "{system:?} SM cycle residency"
        );
        assert_eq!(
            a.stats.mem_cycles_at, b.stats.mem_cycles_at,
            "{system:?} memory cycle residency"
        );
        assert_eq!(
            a.stats.warp_states, b.stats.warp_states,
            "{system:?} warp-state histogram"
        );
        assert_eq!(
            a.stats.wall_time_fs, b.stats.wall_time_fs,
            "{system:?} wall time"
        );
    }
}

/// Replaying a run one `Engine::step()` at a time is the same machine as
/// the one-shot entry point: every counter the simulator publishes must
/// come back bit-identical.
#[test]
fn engine_stepping_replay_is_bit_identical() {
    use equalizer_core::Equalizer;
    use equalizer_sim::engine::{Engine, StepEvent};
    use equalizer_sim::gpu::{simulate_with, SimOptions};

    let config = equalizer_sim::config::GpuConfig::gtx480();
    let k = kernel_by_name("mmer").unwrap();
    let mut gov = Equalizer::new(Mode::Performance, config.num_sms);
    let oneshot = simulate_with(&config, &k, &mut gov, SimOptions::default()).unwrap();

    let mut gov = Equalizer::new(Mode::Performance, config.num_sms);
    let mut engine = Engine::new(&config, &k, SimOptions::default()).unwrap();
    while engine.step(&mut gov).unwrap() != StepEvent::Complete {}
    let stepped = engine.stats();

    assert_eq!(oneshot.wall_time_fs, stepped.wall_time_fs, "wall time");
    assert_eq!(
        oneshot.sm_cycles_at, stepped.sm_cycles_at,
        "SM cycle residency"
    );
    assert_eq!(
        oneshot.mem_cycles_at, stepped.mem_cycles_at,
        "memory cycle residency"
    );
    assert_eq!(
        oneshot.instructions(),
        stepped.instructions(),
        "instructions"
    );
    assert_eq!(
        oneshot.warp_states, stepped.warp_states,
        "warp-state histogram"
    );
    assert_eq!(oneshot.epochs, stepped.epochs, "epoch timeline");
}

#[test]
fn energy_model_is_a_pure_function() {
    let r = Runner::gtx480();
    let k = kernel_by_name("cfd-2").unwrap();
    let m = r.baseline(&k).unwrap();
    let e1 = r.model().energy(&m.stats);
    let e2 = r.model().energy(&m.stats);
    assert_eq!(e1, e2);
    assert!(e1.total_j() > 0.0);
}

//! Integration tests for the adaptiveness results (Figures 2a, 10, 11)
//! and the baseline comparisons.

use equalizer_core::Mode;
use equalizer_harness::{compare, Runner, System};
use equalizer_workloads::{bfs2, kernel_by_name};

fn runner() -> Runner {
    Runner::gtx480()
}

#[test]
fn bfs2_oracle_beats_every_static_choice() {
    // Figure 2a: no single block count is best for all twelve
    // invocations.
    let r = runner();
    let k = bfs2();
    let mut per_static: Vec<Vec<f64>> = Vec::new();
    for blocks in 1..=3usize {
        let m = r.run(&k, System::FixedBlocks(blocks)).unwrap();
        per_static.push(
            m.stats
                .invocations
                .iter()
                .map(|i| i.wall_fs as f64)
                .collect(),
        );
    }
    let n = per_static[0].len();
    assert_eq!(n, 12, "bfs-2 runs twelve invocations");
    let oracle: f64 = (0..n)
        .map(|i| {
            per_static
                .iter()
                .map(|v| v[i])
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    for (idx, v) in per_static.iter().enumerate() {
        let total: f64 = v.iter().sum();
        assert!(
            oracle < total * 0.995,
            "oracle must beat static {} blocks",
            idx + 1
        );
    }
    // And the winner flips somewhere mid-run.
    let best_at = |i: usize| {
        (0..3)
            .min_by(|&a, &b| per_static[a][i].total_cmp(&per_static[b][i]))
            .unwrap()
    };
    assert_ne!(
        best_at(0),
        best_at(8),
        "the best static block count must flip between early and middle invocations"
    );
}

#[test]
fn equalizer_tracks_bfs2_phase_change() {
    // Figure 11a: with frequencies pinned, Equalizer's block count drops
    // for the cache-hostile middle invocations.
    let r = runner();
    let k = bfs2();
    let m = r.run(&k, System::EqualizerBlocksOnly).unwrap();
    let early = m
        .stats
        .mean_blocks_in_invocation(2)
        .expect("epochs in inv 2");
    let middle = m
        .stats
        .mean_blocks_in_invocation(9)
        .expect("epochs in inv 9");
    assert!(
        middle < early - 0.5,
        "Equalizer must shed blocks in the cache phase (early {early:.2}, middle {middle:.2})"
    );
}

#[test]
fn equalizer_beats_dyncta_on_spmv() {
    // Figure 11b: after spmv's cache phase ends, DynCTA stays throttled
    // while Equalizer re-raises concurrency.
    let r = runner();
    let k = kernel_by_name("spmv").unwrap();
    let base = r.baseline(&k).unwrap();
    let eq = r.run(&k, System::Equalizer(Mode::Performance)).unwrap();
    let dc = r.run(&k, System::DynCta).unwrap();
    let eq_s = compare(&base, &eq).speedup;
    let dc_s = compare(&base, &dc).speedup;
    assert!(
        eq_s > dc_s,
        "Equalizer ({eq_s:.3}) must beat DynCTA ({dc_s:.3}) on the phased kernel"
    );
}

#[test]
fn cache_baselines_all_improve_kmeans() {
    // Figure 10: DynCTA, CCWS and Equalizer all help the most
    // cache-sensitive kernel; Equalizer wins.
    let r = runner();
    let k = kernel_by_name("kmn").unwrap();
    let base = r.baseline(&k).unwrap();
    let dyncta = compare(&base, &r.run(&k, System::DynCta).unwrap()).speedup;
    let ccws = compare(&base, &r.run(&k, System::Ccws).unwrap()).speedup;
    let eq = compare(
        &base,
        &r.run(&k, System::Equalizer(Mode::Performance)).unwrap(),
    )
    .speedup;
    assert!(dyncta > 1.02, "DynCTA must help kmn (got {dyncta:.3})");
    assert!(ccws > 1.02, "CCWS must help kmn (got {ccws:.3})");
    // CCWS throttles per warp (finer than Equalizer's block granularity)
    // and may win on a single kernel — the paper sees the same on mmer;
    // Equalizer must still clearly beat the block-granular heuristic.
    assert!(
        eq > dyncta + 0.05,
        "Equalizer ({eq:.3}) must clearly beat DynCTA ({dyncta:.3})"
    );
}

#[test]
fn frequency_residency_reflects_mode() {
    // Figure 9: compute kernels sit at SM-high in performance mode and
    // memory-low in energy mode.
    let r = runner();
    let k = kernel_by_name("mri-q").unwrap();
    let perf = r.run(&k, System::Equalizer(Mode::Performance)).unwrap();
    assert!(
        perf.stats.sm_level_residency()[2] > 0.5,
        "performance mode must hold the SM domain high most of the time"
    );
    let energy = r.run(&k, System::Equalizer(Mode::Energy)).unwrap();
    assert!(
        energy.stats.mem_level_residency()[0] > 0.5,
        "energy mode must hold the memory domain low most of the time"
    );
    assert!(
        energy.stats.sm_level_residency()[1] > 0.5,
        "energy mode must leave the SM domain nominal for a compute kernel"
    );
}

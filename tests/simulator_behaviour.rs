//! Integration tests of simulator mechanisms that only show up at the
//! whole-GPU level: VF transitions mid-run, texture-path semantics,
//! pause/unpause with in-flight memory, and the CCWS hook.

use std::sync::Arc;

use equalizer_baselines::with_ccws;
use equalizer_sim::ccws::CcwsConfig;
use equalizer_sim::governor::{
    EpochContext, EpochDecision, Governor, SmEpochReport, StaticGovernor, VfRequest,
};
use equalizer_sim::gpu::simulate;
use equalizer_sim::kernel::{Invocation, KernelCategory, KernelSpec};
use equalizer_sim::prelude::*;

fn small_config() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.num_sms = 2;
    c
}

fn alu_kernel(blocks: u64, iters: u32) -> KernelSpec {
    KernelSpec::new(
        "itest-alu",
        KernelCategory::Compute,
        4,
        8,
        vec![Invocation {
            grid_blocks: blocks,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![Instr::alu(), Instr::alu_dep()],
                iters,
            )])),
        }],
    )
}

/// A governor that requests one SM-domain step up at its first epoch.
#[derive(Debug, Default)]
struct BoostOnce {
    done: bool,
}

impl Governor for BoostOnce {
    fn name(&self) -> &str {
        "boost-once"
    }
    fn epoch(&mut self, _ctx: &EpochContext, reports: &[SmEpochReport]) -> EpochDecision {
        let mut d = EpochDecision::maintain(reports.len());
        if !self.done {
            d.sm_vf = VfRequest::Increase;
            self.done = true;
        }
        d
    }
}

#[test]
fn vf_transition_mid_run_changes_residency_and_speed() {
    let config = small_config();
    let kernel = alu_kernel(64, 3000);
    let base = simulate(&config, &kernel, &mut StaticGovernor).unwrap();
    let boosted = simulate(&config, &kernel, &mut BoostOnce::default()).unwrap();
    // The boost applies after the first epoch + VRM delay, so the run ends
    // with time spent at both nominal and high.
    assert!(boosted.sm_time_at[1] > 0, "some time at nominal");
    assert!(boosted.sm_time_at[2] > 0, "some time at high");
    assert!(
        boosted.wall_time_fs < base.wall_time_fs,
        "a compute kernel must finish sooner once boosted"
    );
    // Instructions are conserved across the transition.
    assert_eq!(base.instructions(), boosted.instructions());
}

#[test]
fn texture_loads_complete_and_count_no_l1_traffic() {
    let config = small_config();
    let kernel = KernelSpec::new(
        "itest-tex",
        KernelCategory::Memory,
        4,
        4,
        vec![Invocation {
            grid_blocks: 8,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![
                    Instr::Mem(MemInstr {
                        is_load: true,
                        pattern: AddressPattern::Streaming,
                        accesses: 1,
                        space: MemSpace::Texture,
                    }),
                    Instr::alu(),
                ],
                50,
            )])),
        }],
    );
    let stats = simulate(&config, &kernel, &mut StaticGovernor).unwrap();
    let l1_accesses: u64 = stats.sm_events.iter().map(|e| e.l1_accesses).sum();
    assert_eq!(l1_accesses, 0, "texture path bypasses the L1 data cache");
    assert!(
        stats.dram_accesses() > 0,
        "texture traffic still reaches DRAM"
    );
    assert_eq!(stats.instructions(), 8 * 4 * 2 * 50);
}

#[test]
fn pausing_with_inflight_loads_is_safe() {
    // Throttle hard on a memory kernel: paused blocks hold in-flight
    // loads; everything must still drain and complete.
    let config = small_config();
    let kernel = KernelSpec::new(
        "itest-pause",
        KernelCategory::Memory,
        4,
        8,
        vec![Invocation {
            grid_blocks: 32,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![Instr::load_streaming(), Instr::alu_dep()],
                60,
            )])),
        }],
    );
    let stats = simulate(
        &config,
        &kernel,
        &mut equalizer_sim::governor::FixedBlocksGovernor::new(1),
    )
    .unwrap();
    assert_eq!(stats.instructions(), 32 * 4 * 2 * 60);
}

#[test]
fn barriers_work_under_throttling() {
    let config = small_config();
    let kernel = KernelSpec::new(
        "itest-sync",
        KernelCategory::Compute,
        6,
        8,
        vec![Invocation {
            grid_blocks: 16,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![
                    Instr::alu_dep(),
                    Instr::Sync,
                    Instr::load_streaming(),
                    Instr::Sync,
                ],
                30,
            )])),
        }],
    );
    let stats = simulate(
        &config,
        &kernel,
        &mut equalizer_sim::governor::FixedBlocksGovernor::new(2),
    )
    .unwrap();
    assert_eq!(
        stats.instructions(),
        16 * 6 * 2 * 30,
        "barriers issue nothing"
    );
}

#[test]
fn ccws_throttles_thrashing_workloads() {
    // Full 15-SM configuration: the combined footprint must overwhelm the
    // shared L2 for thrashing to cost real bandwidth.
    let config = GpuConfig::gtx480();
    let kernel = KernelSpec::new(
        "itest-ccws",
        KernelCategory::Cache,
        8,
        6,
        vec![Invocation {
            grid_blocks: 180,
            program: Arc::new(Program::new(vec![Segment::new(
                vec![
                    Instr::Mem(MemInstr {
                        is_load: true,
                        pattern: AddressPattern::WorkingSet { lines: 24 },
                        accesses: 6,
                        space: MemSpace::Global,
                    }),
                    Instr::alu(),
                ],
                260,
            )])),
        }],
    );
    let base = simulate(&config, &kernel, &mut StaticGovernor).unwrap();
    let ccws_cfg = with_ccws(config, CcwsConfig::default());
    let ccws = simulate(&ccws_cfg, &kernel, &mut StaticGovernor).unwrap();
    assert!(
        ccws.l1_hit_rate() > base.l1_hit_rate(),
        "CCWS must recover locality (base {:.3}, ccws {:.3})",
        base.l1_hit_rate(),
        ccws.l1_hit_rate()
    );
    assert!(
        ccws.wall_time_fs < base.wall_time_fs,
        "recovered locality must translate into speed"
    );
}

#[test]
fn epoch_timeline_is_monotonic_and_complete() {
    let config = small_config();
    let kernel = alu_kernel(64, 2000);
    let stats = simulate(&config, &kernel, &mut StaticGovernor).unwrap();
    assert!(!stats.epochs.is_empty());
    for pair in stats.epochs.windows(2) {
        assert!(pair[0].end_fs < pair[1].end_fs, "epoch times increase");
        assert!(pair[0].epoch_index < pair[1].epoch_index);
    }
    let last = stats.epochs.last().unwrap();
    assert!(last.end_fs <= stats.wall_time_fs);
}

//! The observability layer's two headline guarantees:
//!
//! 1. **Deterministic exports** — running the same configuration twice
//!    produces byte-identical Chrome traces, CSVs and summaries.
//! 2. **Zero observer effect** — a run with observers attached produces
//!    exactly the same [`RunStats`] as a bare run.

use equalizer_core::{Equalizer, Mode};
use equalizer_harness::trace::JsonLinesTrace;
use equalizer_obs::{chrome, csv, json, summary, MetricsObserver};
use equalizer_power::PowerModel;
use equalizer_sim::config::GpuConfig;
use equalizer_sim::engine::Engine;
use equalizer_sim::gpu::SimOptions;
use equalizer_sim::stats::RunStats;
use equalizer_workloads::kernel_by_name;

fn observed_run(name: &str, mode: Mode) -> (RunStats, MetricsObserver) {
    let config = GpuConfig::gtx480();
    let kernel = kernel_by_name(name).unwrap();
    let mut governor = Equalizer::new(mode, config.num_sms);
    let mut obs = MetricsObserver::new(PowerModel::gtx480());
    let stats = {
        let mut engine = Engine::new(&config, &kernel, SimOptions::default())
            .unwrap()
            .with_observer(&mut obs);
        engine.run(&mut governor).unwrap();
        engine.stats()
    };
    assert!(obs.error().is_none(), "{:?}", obs.error());
    (stats, obs)
}

#[test]
fn exports_are_byte_identical_across_runs() {
    let (stats_a, obs_a) = observed_run("mmer", Mode::Performance);
    let (stats_b, obs_b) = observed_run("mmer", Mode::Performance);
    assert_eq!(stats_a, stats_b, "deterministic replay");

    assert_eq!(
        chrome::chrome_trace(&obs_a),
        chrome::chrome_trace(&obs_b),
        "trace bytes"
    );
    assert_eq!(
        csv::all_csvs(obs_a.registry()),
        csv::all_csvs(obs_b.registry()),
        "CSV bytes"
    );
    assert_eq!(
        summary::summary(obs_a.registry()),
        summary::summary(obs_b.registry()),
        "summary bytes"
    );
}

#[test]
fn observers_do_not_perturb_the_run() {
    let config = GpuConfig::gtx480();
    let kernel = kernel_by_name("mmer").unwrap();

    let bare = {
        let mut governor = Equalizer::new(Mode::Performance, config.num_sms);
        let mut engine = Engine::new(&config, &kernel, SimOptions::default()).unwrap();
        engine.run(&mut governor).unwrap();
        engine.stats()
    };

    // Same run with two observers attached: the full metrics pipeline
    // and the JSON-lines tracer, both strictly read-only.
    let mut obs = MetricsObserver::new(PowerModel::gtx480());
    let mut trace = JsonLinesTrace::new();
    let watched = {
        let mut governor = Equalizer::new(Mode::Performance, config.num_sms);
        let mut engine = Engine::new(&config, &kernel, SimOptions::default())
            .unwrap()
            .with_observer(&mut obs)
            .with_observer(&mut trace);
        engine.run(&mut governor).unwrap();
        engine.stats()
    };

    assert_eq!(bare, watched, "observers must not change the simulation");
    assert!(!trace.is_empty());
    assert!(!obs.registry().is_empty());
}

#[test]
fn chrome_trace_is_valid_json_with_expected_tracks() {
    let (_, obs) = observed_run("mmer", Mode::Energy);
    let trace = chrome::chrome_trace(&obs);
    json::validate(&trace).unwrap();
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\": \"X\""), "epoch slices present");
    assert!(trace.contains("\"ph\": \"C\""), "counter tracks present");
    assert!(trace.contains("\"ph\": \"M\""), "metadata present");
    assert!(
        trace.contains("gpu machine") && trace.contains("metrics"),
        "process names present"
    );
}

#[test]
fn metrics_cover_the_paper_counters() {
    let (stats, obs) = observed_run("mmer", Mode::Performance);
    let registry = obs.registry();
    for name in [
        "warp.active.avg",
        "warp.waiting.avg",
        "warp.excess_alu.avg",
        "warp.excess_mem.avg",
        "issue.rate",
        "cache.l1.hit_rate",
        "cache.l2.hit_rate",
        "dram.bw_util",
        "power.total.w",
        "vf.mem.index",
        "blocks.target.mean",
    ] {
        let metric = registry
            .get(name)
            .unwrap_or_else(|| panic!("metric `{name}` missing"));
        assert!(!metric.points.is_empty(), "metric `{name}` has no samples");
    }
    // The instruction counter is cumulative: monotone non-decreasing and
    // bounded by the run total (the tail past the last epoch boundary is
    // not sampled).
    let instr = registry.get("instructions.total").unwrap();
    let points = &instr.points;
    assert!(!points.is_empty());
    for pair in points.windows(2) {
        assert!(pair[1].value >= pair[0].value, "counter must not decrease");
    }
    let last = instr.last().unwrap_or(0.0);
    assert!(last > 0.0);
    assert!(last <= stats.instructions() as f64);
}

//! The decision-audit acceptance criterion: every VF transition and
//! every CTA-target change the engine applies during an Equalizer run
//! must be matched by an audit record, and every audit record must be
//! explainable — recomputing Algorithm 1 and the Table I votes from the
//! recorded counter inputs must reproduce the recorded decision.

use equalizer_core::decision::{detect, propose};
use equalizer_core::freq_manager::tally;
use equalizer_core::mode::table_i_votes;
use equalizer_core::{DecisionRecord, Equalizer, Mode};
use equalizer_sim::config::{Femtos, GpuConfig, VfLevel};
use equalizer_sim::engine::{BlockEvent, Engine, Observer, VfDomain};
use equalizer_sim::governor::VfRequest;
use equalizer_sim::gpu::SimOptions;
use equalizer_workloads::kernel_by_name;

/// Collects the engine-applied events an audit record must explain.
#[derive(Default)]
struct EventLog {
    vf: Vec<(VfDomain, VfLevel, VfLevel, Femtos)>,
    target_changes: Vec<(usize, usize)>,
}

impl Observer for EventLog {
    fn on_vf_transition(&mut self, domain: VfDomain, from: VfLevel, to: VfLevel, at_fs: Femtos) {
        self.vf.push((domain, from, to, at_fs));
    }

    fn on_block_event(&mut self, event: BlockEvent) {
        if let BlockEvent::TargetChanged { sm, target } = event {
            self.target_changes.push((sm, target));
        }
    }
}

fn audited_run(name: &str, mode: Mode) -> (Vec<DecisionRecord>, EventLog) {
    let config = GpuConfig::gtx480();
    let kernel = kernel_by_name(name).unwrap();
    let mut governor = Equalizer::new(mode, config.num_sms).with_audit();
    let mut log = EventLog::default();
    let mut engine = Engine::new(&config, &kernel, SimOptions::default())
        .unwrap()
        .with_observer(&mut log);
    engine.run(&mut governor).unwrap();
    drop(engine);
    (governor.into_audit(), log)
}

/// The request direction a `from -> to` move corresponds to.
fn direction(from: VfLevel, to: VfLevel) -> VfRequest {
    if to.index() > from.index() {
        VfRequest::Increase
    } else {
        VfRequest::Decrease
    }
}

fn request_for(rec: &DecisionRecord, domain: VfDomain) -> VfRequest {
    match domain {
        VfDomain::Memory => rec.mem_request,
        VfDomain::Sm(i) => rec
            .per_sm_requests
            .as_ref()
            .and_then(|v| v.get(i).copied())
            .unwrap_or(rec.sm_request),
    }
}

#[test]
fn every_applied_action_has_a_matching_audit_record() {
    let (audit, log) = audited_run("mmer", Mode::Performance);
    assert!(!audit.is_empty(), "audit trail must be recorded");
    assert!(
        !log.vf.is_empty(),
        "Equalizer moves frequencies on this kernel"
    );

    for &(domain, from, to, at_fs) in &log.vf {
        let want = direction(from, to);
        // The decision precedes the transition (it applies after the
        // regulator latency); the most recent record at or before the
        // apply time must have requested this exact move.
        let rec = audit
            .iter()
            .filter(|r| r.now_fs <= at_fs)
            .max_by_key(|r| r.now_fs)
            .unwrap_or_else(|| panic!("no audit record precedes transition at {at_fs}"));
        assert_eq!(
            request_for(rec, domain),
            want,
            "transition {domain:?} {from:?}->{to:?} at {at_fs} unexplained by epoch {}",
            rec.epoch
        );
    }

    for &(sm, target) in &log.target_changes {
        let explained = audit.iter().any(|rec| {
            rec.sms
                .iter()
                .any(|a| a.sm == sm && a.block_change_applied() && a.target_after == target)
        });
        assert!(
            explained,
            "target change sm {sm} -> {target} has no matching audit record"
        );
    }
}

#[test]
fn audit_records_recompute_under_the_paper_rules() {
    for mode in [Mode::Performance, Mode::Energy] {
        let (audit, _) = audited_run("mmer", mode);
        assert!(!audit.is_empty());
        for rec in &audit {
            assert_eq!(rec.mode, mode);
            for sm in &rec.sms {
                // Algorithm 1: the recorded tendency must follow from the
                // recorded counter inputs and W_cta.
                assert_eq!(
                    detect(&sm.inputs, rec.w_cta),
                    sm.tendency,
                    "epoch {} sm {}: tendency not reproducible",
                    rec.epoch,
                    sm.sm
                );
                // The proposal derived from that tendency.
                let proposal = propose(sm.tendency);
                assert_eq!(proposal.block_delta, sm.proposed_block_delta);
                assert_eq!(proposal.action, sm.action);
                // Table I: mode + action fix both domain votes.
                let votes = table_i_votes(rec.mode, sm.action);
                assert_eq!(votes.sm, sm.sm_vote);
                assert_eq!(votes.mem, sm.mem_vote);
                // Block targets stay within the paper's bounds.
                assert!(sm.target_after >= 1 && sm.target_after <= rec.resident_limit);
            }
            // The frequency manager's majority vote over the recorded
            // per-SM votes must reproduce the recorded requests.
            assert_eq!(
                tally(rec.sms.iter().map(|s| s.sm_vote), rec.sm_level),
                rec.sm_request,
                "epoch {}: SM tally not reproducible",
                rec.epoch
            );
            assert_eq!(
                tally(rec.sms.iter().map(|s| s.mem_vote), rec.mem_level),
                rec.mem_request,
                "epoch {}: memory tally not reproducible",
                rec.epoch
            );
        }
    }
}

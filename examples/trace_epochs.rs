//! Watching a run from the inside: drive the simulator through the
//! step-wise [`Engine`] with a custom [`Observer`] that narrates epoch
//! boundaries and VF transitions, then dump the same run as JSON lines
//! via the harness's [`JsonLinesTrace`].
//!
//! ```sh
//! cargo run --release --example trace_epochs
//! ```

use equalizer_core::{Equalizer, Mode};
use equalizer_harness::trace::JsonLinesTrace;
use equalizer_sim::config::Femtos;
use equalizer_sim::engine::{BlockEvent, VfDomain};
use equalizer_sim::governor::{EpochContext, SmEpochReport};
use equalizer_sim::prelude::*;
use equalizer_workloads::kernel_by_name;

/// A hand-written observer: prints a one-line commentary per epoch and
/// per VF transition, and tallies block completions. Observers are
/// read-only taps — the run below is bit-identical to an unobserved one.
#[derive(Debug, Default)]
struct Narrator {
    blocks_done: u64,
    transitions: usize,
}

impl Observer for Narrator {
    fn on_invocation_start(&mut self, invocation: usize, kernel: &KernelSpec) {
        println!("-- invocation {invocation} of {} starts", kernel.name());
    }

    fn on_epoch(&mut self, ctx: &EpochContext, reports: &[SmEpochReport], record: &EpochRecord) {
        let c = &record.counters;
        let mem_stalled = c.excess_mem > c.excess_alu;
        println!(
            "epoch {:>3} @ {:>7.3} us | {} SMs | {:>4.1} active blocks/SM | sm {} / mem {} | {}",
            ctx.epoch_index,
            record.end_fs as f64 / 1e9,
            reports.len(),
            record.mean_active_blocks,
            record.sm_level,
            record.mem_level,
            if mem_stalled {
                "memory-bound"
            } else {
                "compute-bound"
            },
        );
    }

    fn on_vf_transition(&mut self, domain: VfDomain, from: VfLevel, to: VfLevel, apply_at: Femtos) {
        self.transitions += 1;
        let which = match domain {
            VfDomain::Sm(i) => format!("SM {i}"),
            VfDomain::Memory => "memory".to_string(),
        };
        println!(
            "    vf: {which} {from} -> {to} (applies at {:.3} us)",
            apply_at as f64 / 1e9
        );
    }

    fn on_block_event(&mut self, event: BlockEvent) {
        if let BlockEvent::Completed { count, .. } = event {
            self.blocks_done += count;
        }
    }
}

fn main() -> Result<(), SimError> {
    let config = GpuConfig::gtx480();
    let kernel = kernel_by_name("kmn").expect("kmn is in the Table II catalog");

    // 1. A narrated run: attach the custom observer and let Equalizer
    //    (performance mode) drive the VF levers.
    let mut narrator = Narrator::default();
    let mut governor = Equalizer::new(Mode::Performance, config.num_sms);
    let mut engine =
        Engine::new(&config, &kernel, SimOptions::default())?.with_observer(&mut narrator);
    let stats = engine.run(&mut governor)?;
    println!(
        "\nrun complete: {:.3} ms, {} epochs, {} blocks retired, {} VF transitions",
        stats.time_seconds() * 1e3,
        stats.epochs.len(),
        narrator.blocks_done,
        narrator.transitions,
    );

    // 2. The same run as machine-readable JSON lines — the harness's
    //    bundled trace observer. Pipe this into jq or a plotting script.
    let mut trace = JsonLinesTrace::new();
    let mut governor = Equalizer::new(Mode::Performance, config.num_sms);
    let mut engine =
        Engine::new(&config, &kernel, SimOptions::default())?.with_observer(&mut trace);
    engine.run(&mut governor)?;
    println!("\nfirst JSON-lines trace events of the same run:");
    for line in trace.lines().lines().take(5) {
        println!("{line}");
    }
    println!("... ({} events total)", trace.len());
    Ok(())
}

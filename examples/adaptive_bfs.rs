//! Inter-invocation adaptiveness: the `bfs-2` study of Figures 2a/11a.
//!
//! `bfs-2` launches twelve times; the middle invocations flip to a
//! cache-hostile working set where fewer blocks win. A static choice is
//! wrong somewhere; Equalizer re-tunes as the behaviour changes.
//!
//! ```sh
//! cargo run --release --example adaptive_bfs
//! ```

use equalizer_harness::figures::figure2a_11a;
use equalizer_harness::Runner;

fn main() {
    let runner = Runner::gtx480();
    let study = figure2a_11a(&runner).expect("simulation");

    println!("bfs-2: per-invocation runtime (us), twelve invocations\n");
    print!("{:<12}", "blocks");
    for i in 1..=study.optimal_s.len() {
        print!("{:>7}", format!("inv{i}"));
    }
    println!("{:>8}", "total");
    for (i, times) in study.per_invocation_s.iter().enumerate() {
        print!("{:<12}", study.block_counts[i]);
        for s in times {
            print!("{:>7.1}", s * 1e6);
        }
        println!("{:>8.3}", study.total_normalised(i));
    }
    print!("{:<12}", "oracle");
    for s in &study.optimal_s {
        print!("{:>7.1}", s * 1e6);
    }
    println!("{:>8.3}", study.optimal_normalised());
    print!("{:<12}", "equalizer");
    for s in &study.equalizer_s {
        print!("{:>7.1}", s * 1e6);
    }
    println!("{:>8.3}", study.equalizer_normalised());
    print!("{:<12}", "eq blocks");
    for b in &study.equalizer_blocks {
        print!("{:>7.1}", b);
    }
    println!();

    println!(
        "\nEqualizer should sit near 3 blocks early, drop toward 1 for invocations\n\
         8-10 (the cache-hostile stretch), then recover — tracking the oracle with\n\
         the 3-epoch hysteresis lag the paper describes."
    );
}

//! Quickstart: simulate one kernel on the baseline GPU, then let
//! Equalizer tune it in both modes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use equalizer_core::{Equalizer, Mode};
use equalizer_power::PowerModel;
use equalizer_sim::prelude::*;
use equalizer_workloads::kernel_by_name;

fn main() -> Result<(), SimError> {
    // The hardware: a Fermi-style GTX 480 (15 SMs, 48 warps/SM, two
    // independently tunable clock domains).
    let config = GpuConfig::gtx480();
    let model = PowerModel::gtx480();

    // The workload: kmeans, the paper's most cache-sensitive kernel.
    let kernel = kernel_by_name("kmn").expect("kmn is in the Table II catalog");
    println!(
        "kernel {} ({}): {} warps/block, up to {} blocks/SM",
        kernel.name(),
        kernel.category(),
        kernel.warps_per_block(),
        kernel.max_blocks_per_sm()
    );

    // 1. Baseline: maximum concurrency, nominal frequencies.
    let base = simulate(&config, &kernel, &mut StaticGovernor)?;
    let base_energy = model.energy(&base);
    println!(
        "\nbaseline:     {:.3} ms, {:.1} mJ, L1 hit rate {:.1}%",
        base.time_seconds() * 1e3,
        base_energy.total_j() * 1e3,
        base.l1_hit_rate() * 100.0
    );

    // 2. Equalizer in performance mode: finds the L1 thrashing, pauses
    //    thread blocks and boosts the memory frequency.
    let mut perf = Equalizer::new(Mode::Performance, config.num_sms);
    let fast = simulate(&config, &kernel, &mut perf)?;
    let fast_energy = model.energy(&fast);
    println!(
        "performance:  {:.3} ms ({:.2}x), {:.1} mJ ({:+.1}%), L1 hit rate {:.1}%",
        fast.time_seconds() * 1e3,
        base.time_seconds() / fast.time_seconds(),
        fast_energy.total_j() * 1e3,
        (fast_energy.total_j() / base_energy.total_j() - 1.0) * 100.0,
        fast.l1_hit_rate() * 100.0
    );

    // 3. Equalizer in energy mode: same concurrency tuning, but throttles
    //    the under-utilised domain instead of boosting the bottleneck.
    let mut energy = Equalizer::new(Mode::Energy, config.num_sms);
    let frugal = simulate(&config, &kernel, &mut energy)?;
    let frugal_energy = model.energy(&frugal);
    println!(
        "energy:       {:.3} ms ({:.2}x), {:.1} mJ ({:+.1}%)",
        frugal.time_seconds() * 1e3,
        base.time_seconds() / frugal.time_seconds(),
        frugal_energy.total_j() * 1e3,
        (frugal_energy.total_j() / base_energy.total_j() - 1.0) * 100.0,
    );

    // Where did the time go? VF residency tells the story.
    let r = fast.mem_level_residency();
    println!(
        "\nperformance-mode memory-domain residency: low {:.0}% / nominal {:.0}% / high {:.0}%",
        r[0] * 100.0,
        r[1] * 100.0,
        r[2] * 100.0
    );
    Ok(())
}

//! Run the whole Table II suite in performance mode and print the
//! per-category summary (a compact version of Figure 7).
//!
//! ```sh
//! cargo run --release --example performance_sweep
//! ```

use equalizer_core::Mode;
use equalizer_harness::figures::{all_kernels, figure7_8, summarise};
use equalizer_harness::{pct_delta, TextTable};

fn main() {
    let runner = equalizer_harness::Runner::gtx480();
    let kernels = all_kernels();
    println!(
        "running {} kernels x 4 systems (this takes a few minutes)...",
        kernels.len()
    );
    let rows = figure7_8(&runner, &kernels, Mode::Performance).expect("simulation");

    let mut t = TextTable::new(["kernel", "category", "speedup", "energy delta"]);
    for r in &rows {
        t.row([
            r.kernel.clone(),
            r.category.to_string(),
            format!("{:.3}", r.equalizer.speedup),
            pct_delta(r.equalizer.energy_ratio),
        ]);
    }
    println!("{t}");

    println!("Category geomeans (speedup / energy delta):");
    for (group, sp, er) in summarise(&rows, |r| r.equalizer).groups {
        println!("  {group:<12} {sp:.3} / {}", pct_delta(er));
    }
    println!("\nPaper: +22% performance overall at +6% energy.");
}

//! Run the whole Table II suite in energy mode and print the per-category
//! summary (a compact version of Figure 8).
//!
//! ```sh
//! cargo run --release --example energy_sweep
//! ```

use equalizer_core::Mode;
use equalizer_harness::figures::{all_kernels, figure7_8, summarise};
use equalizer_harness::{pct, TextTable};

fn main() {
    let runner = equalizer_harness::Runner::gtx480();
    let kernels = all_kernels();
    println!(
        "running {} kernels x 4 systems (this takes a few minutes)...",
        kernels.len()
    );
    let rows = figure7_8(&runner, &kernels, Mode::Energy).expect("simulation");

    let mut t = TextTable::new(["kernel", "category", "performance", "energy saved"]);
    for r in &rows {
        t.row([
            r.kernel.clone(),
            r.category.to_string(),
            format!("{:.3}", r.equalizer.speedup),
            pct(1.0 - r.equalizer.energy_ratio),
        ]);
    }
    println!("{t}");

    println!("Category geomeans (performance / energy saved):");
    for (group, sp, er) in summarise(&rows, |r| r.equalizer).groups {
        println!("  {group:<12} {sp:.3} / {}", pct(1.0 - er));
    }
    println!("\nPaper: 15% energy saved overall at +5% performance.");
}

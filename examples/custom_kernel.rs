//! Build a custom kernel against the public API and watch Equalizer
//! classify it.
//!
//! The kernel below has two phases — a bandwidth-hungry streaming phase
//! and an ALU-heavy phase — the situation the paper argues static tuning
//! cannot handle (§II-B).
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use equalizer_core::{detect, AveragedCounters, Equalizer, Mode};
use equalizer_power::PowerModel;
use equalizer_sim::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), SimError> {
    // Phase 1: memory — a divergent streaming load per two ALU ops.
    let memory_phase = Segment::new(
        vec![
            Instr::Mem(MemInstr {
                is_load: true,
                pattern: AddressPattern::Streaming,
                accesses: 2,
                space: MemSpace::Global,
            }),
            Instr::alu(),
            Instr::alu_dep(),
        ],
        150,
    );
    // Phase 2: compute — long independent ALU runs.
    let mut body = vec![Instr::alu(); 40];
    body.push(Instr::load_streaming());
    let compute_phase = Segment::new(body, 80);

    let kernel = KernelSpec::new(
        "phased-demo",
        KernelCategory::Unsaturated,
        8, // warps per block
        6, // occupancy limit
        vec![Invocation {
            grid_blocks: 180,
            program: Arc::new(Program::new(vec![memory_phase, compute_phase])),
        }],
    );

    let config = GpuConfig::gtx480();
    let model = PowerModel::gtx480();

    let base = simulate(&config, &kernel, &mut StaticGovernor)?;
    let mut gov = Equalizer::new(Mode::Performance, config.num_sms);
    let tuned = simulate(&config, &kernel, &mut gov)?;

    println!(
        "baseline {:.3} ms -> Equalizer {:.3} ms ({:.2}x) at {:+.1}% energy",
        base.time_seconds() * 1e3,
        tuned.time_seconds() * 1e3,
        base.time_seconds() / tuned.time_seconds(),
        (model.energy(&tuned).total_j() / model.energy(&base).total_j() - 1.0) * 100.0
    );

    // Peek at what Algorithm 1 saw across the run.
    println!("\nepoch  tendency              sm-level  mem-level");
    for e in tuned.epochs.iter().step_by(tuned.epochs.len().max(8) / 8) {
        let avg = AveragedCounters {
            active: e.counters.avg_active(),
            waiting: e.counters.avg_waiting(),
            excess_alu: e.counters.avg_excess_alu(),
            excess_mem: e.counters.avg_excess_mem(),
        };
        println!(
            "{:>5}  {:<20} {:<9} {:<9}",
            e.epoch_index,
            format!("{:?}", detect(&avg, kernel.warps_per_block())),
            e.sm_level.to_string(),
            e.mem_level.to_string()
        );
    }
    println!(
        "\nExpect the detected tendency to flip between memory and compute as blocks\n\
         move through the two phases, with the VF levels following."
    );
    Ok(())
}
